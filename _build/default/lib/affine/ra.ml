open Fact_topology
open Fact_adversary

type variant = Def9_intersection | Lemma6_union

let default_variant = Lemma6_union

(* The condition P(θ, σ) of Definition 9. The per-facet carrier ρ and
   per-face carrier τ both live in Chr s; CSM/CSV/Conc are computed
   there. *)
let face_ok variant alpha ~rho theta =
  if not (Contention.is_contention_simplex theta) then true
  else
    let tau = Simplex.carrier theta in
    let chi_theta = Simplex.colors theta in
    let csm_rho = Simplex.colors (Critical.members alpha rho) in
    let csv_tau = Critical.view alpha tau in
    let exempt =
      match variant with
      | Def9_intersection ->
        not (Pset.is_empty (Pset.inter chi_theta (Pset.inter csm_rho csv_tau)))
      | Lemma6_union ->
        not (Pset.is_empty (Pset.inter chi_theta (Pset.union csm_rho csv_tau)))
    in
    exempt || Simplex.dim theta < Concurrency.level alpha tau

let offending_faces ?(variant = default_variant) alpha sigma =
  let rho = Simplex.carrier sigma in
  List.filter
    (fun theta -> not (face_ok variant alpha ~rho theta))
    (Simplex.faces sigma)

let facet_ok ?(variant = default_variant) alpha sigma =
  let rho = Simplex.carrier sigma in
  List.for_all (face_ok variant alpha ~rho) (Simplex.faces sigma)

let complex ?(variant = default_variant) alpha ~n =
  let chr2 = Chr.iterate 2 (Chr.standard n) in
  Complex.filter_facets (facet_ok ~variant alpha) chr2

let task ?(variant = default_variant) alpha ~n =
  Affine_task.make ~ell:2 (complex ~variant alpha ~n)

let of_adversary ?(variant = default_variant) a =
  task ~variant (Agreement.of_adversary a) ~n:(Adversary.n a)
