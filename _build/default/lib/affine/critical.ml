open Fact_topology
open Fact_adversary

let is_critical alpha sigma =
  if Simplex.is_empty sigma then false
  else begin
    List.iter
      (fun v ->
        if Vertex.level v <> 1 then
          invalid_arg "Critical.is_critical: simplex not in Chr s")
      (Simplex.vertices sigma);
    let car = Simplex.base_carrier sigma in
    let shared =
      List.for_all
        (fun v -> Pset.equal (Vertex.base_carrier v) car)
        (Simplex.vertices sigma)
    in
    shared
    && Agreement.eval alpha (Pset.diff car (Simplex.colors sigma))
       < Agreement.eval alpha car
  end

let critical_subsets alpha sigma =
  List.filter (is_critical alpha) (Simplex.faces sigma)

let members alpha sigma =
  let css = critical_subsets alpha sigma in
  let vs =
    List.filter
      (fun v -> List.exists (fun cs -> Simplex.mem v cs) css)
      (Simplex.vertices sigma)
  in
  Simplex.make vs

let view alpha sigma = Simplex.base_carrier (members alpha sigma)

let all_critical alpha k =
  List.filter (is_critical alpha) (Complex.all_simplices k)
