open Fact_topology

let level2 fname v =
  if Vertex.level v <> 2 then
    invalid_arg (Printf.sprintf "Views.%s: vertex not at level 2" fname)

let chr1_carrier v =
  level2 "chr1_carrier" v;
  Simplex.make (Vertex.carrier v)

let view2 v =
  level2 "view2" v;
  Simplex.colors (chr1_carrier v)

let view1 v =
  level2 "view1" v;
  let self =
    match Simplex.find_color (Vertex.proc v) (chr1_carrier v) with
    | Some v' -> v'
    | None -> invalid_arg "Views.view1: carrier misses own color"
  in
  Vertex.base_carrier self

let pp_views ppf v =
  Format.fprintf ppf "p%d: View1=%a View2=%a" (Vertex.proc v) Pset.pp
    (view1 v) Pset.pp (view2 v)
