(** The affine task of k-obstruction-freedom / k-concurrency
    (Definition 6, after Gafni et al. [12]).

    [R_{k-OF} = Pc({σ ∈ Cont2 : dim σ ≥ k}, Chr² s)] — the pure
    complement of the too-large contention simplices. *)

open Fact_topology

val task : n:int -> k:int -> Affine_task.t
(** Raises [Invalid_argument] unless [1 ≤ k ≤ n]. For [k = n] the task
    is all of [Chr² s] (wait-freedom). *)

val complex : n:int -> k:int -> Complex.t
