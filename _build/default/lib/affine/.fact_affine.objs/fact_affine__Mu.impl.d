lib/affine/mu.ml: Critical Fact_topology List Pset Simplex Vertex Views
