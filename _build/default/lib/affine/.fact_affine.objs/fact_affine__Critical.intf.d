lib/affine/critical.mli: Agreement Complex Fact_adversary Fact_topology Pset Simplex
