lib/affine/concurrency.ml: Agreement Complex Critical Fact_adversary Fact_topology Hashtbl List Option Simplex Stdlib
