lib/affine/views.mli: Fact_topology Format Pset Simplex Vertex
