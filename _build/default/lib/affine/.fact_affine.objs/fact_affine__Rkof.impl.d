lib/affine/rkof.ml: Affine_task Chr Complex Contention Fact_topology List Simplex
