lib/affine/rkof.mli: Affine_task Complex Fact_topology
