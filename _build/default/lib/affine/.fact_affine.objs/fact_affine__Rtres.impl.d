lib/affine/rtres.ml: Affine_task Chr Complex Fact_topology List Pset Simplex Vertex
