lib/affine/mu.mli: Agreement Fact_adversary Fact_topology Pset Simplex Vertex
