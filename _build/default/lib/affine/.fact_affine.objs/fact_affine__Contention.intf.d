lib/affine/contention.mli: Complex Fact_topology Simplex Vertex
