lib/affine/affine_task.ml: Chr Complex Fact_topology Format List Simplex Vertex
