lib/affine/ra.ml: Adversary Affine_task Agreement Chr Complex Concurrency Contention Critical Fact_adversary Fact_topology List Pset Simplex
