lib/affine/affine_task.mli: Complex Fact_topology Format Pset Simplex
