lib/affine/concurrency.mli: Agreement Complex Fact_adversary Fact_topology Simplex
