lib/affine/rtres.mli: Affine_task Complex Fact_topology
