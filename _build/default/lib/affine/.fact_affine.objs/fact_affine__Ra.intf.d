lib/affine/ra.mli: Adversary Affine_task Agreement Complex Fact_adversary Fact_topology Simplex
