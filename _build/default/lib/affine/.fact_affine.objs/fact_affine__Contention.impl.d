lib/affine/contention.ml: Complex Fact_topology List Pset Simplex Views
