lib/affine/critical.ml: Agreement Complex Fact_adversary Fact_topology List Pset Simplex Vertex
