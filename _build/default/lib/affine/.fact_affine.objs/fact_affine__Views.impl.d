lib/affine/views.ml: Fact_topology Format Printf Pset Simplex Vertex
