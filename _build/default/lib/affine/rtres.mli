(** The affine task of t-resilience (Saraph, Herlihy, Gafni [30];
    Figure 1b shows [R_{1-res}] for n = 3).

    The output complex keeps the 2-round IS runs in which every process
    sees at least [n − t − 1] {e other} processes, i.e. every vertex has
    a base carrier of size ≥ n − t; equivalently, [Chr² s] minus the
    star of the (n−t−1)-skeleton of [s]. *)

open Fact_topology

val task : n:int -> t:int -> Affine_task.t
val complex : n:int -> t:int -> Complex.t
