open Fact_topology
open Fact_adversary

let level alpha sigma =
  List.fold_left
    (fun acc tau -> max acc (Agreement.eval alpha (Simplex.base_carrier tau)))
    0
    (Critical.critical_subsets alpha sigma)

let classify alpha k =
  List.map (fun s -> (s, level alpha s)) (Complex.all_simplices k)

let histogram alpha k =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (_, l) ->
      Hashtbl.replace tbl l (1 + Option.value ~default:0 (Hashtbl.find_opt tbl l)))
    (classify alpha k);
  Hashtbl.fold (fun l c acc -> (l, c) :: acc) tbl []
  |> List.sort Stdlib.compare
