(** The affine task [R_A] of a fair adversary (Definition 9, Figure 7).

    A facet σ of [Chr² s] belongs to [R_A] iff every face θ ⊆ σ
    satisfies (with τ = carrier(θ, Chr s) and ρ = carrier(σ, Chr s)):

    {v θ ∈ Cont2 ∧ exempt(θ, ρ, τ) = ∅ ⟹ dim θ < Conc_α(τ) v}

    The paper states the exemption condition in two non-equivalent
    ways: Definition 9 uses the {e intersection}
    [χ(θ) ∩ χ(CSM_α(ρ)) ∩ χ(CSV_α(τ))], while the proof of Lemma 6
    negates the {e union} form [χ(θ) ∩ (χ(CSM_α(ρ)) ∪ χ(CSV_α(τ)))].
    Both are implemented; EXPERIMENTS.md records which one coincides
    with the independent Definition 6 on k-obstruction-free
    adversaries (the union variant does, and it is the default). *)

open Fact_topology
open Fact_adversary

type variant =
  | Def9_intersection  (** literal reading of Definition 9 *)
  | Lemma6_union       (** reading used by the proof of Lemma 6 *)

val default_variant : variant

val facet_ok : ?variant:variant -> Agreement.t -> Simplex.t -> bool
(** Does this facet of [Chr² s] satisfy the [R_A] condition? *)

val complex : ?variant:variant -> Agreement.t -> n:int -> Complex.t
val task : ?variant:variant -> Agreement.t -> n:int -> Affine_task.t

val of_adversary : ?variant:variant -> Adversary.t -> Affine_task.t
(** [R_A] for the adversary's agreement function. The adversary should
    be fair for the characterization theorems to apply; this function
    does not check fairness. *)

val offending_faces :
  ?variant:variant -> Agreement.t -> Simplex.t -> Simplex.t list
(** The faces θ of a facet that violate the condition (empty iff
    {!facet_ok}). For diagnostics and tests. *)
