open Fact_topology

type counts = {
  total : int;
  superset_closed : int;
  symmetric : int;
  fair : int;
  fair_only : int;
  unfair : int;
  by_setcon : (int * int) list;
}

let empty_counts =
  {
    total = 0;
    superset_closed = 0;
    symmetric = 0;
    fair = 0;
    fair_only = 0;
    unfair = 0;
    by_setcon = [];
  }

let bump_setcon table k =
  let cur = Option.value ~default:0 (List.assoc_opt k table) in
  (k, cur + 1) :: List.remove_assoc k table

let add counts a =
  let ssc = Adversary.is_superset_closed a in
  let sym = Adversary.is_symmetric a in
  let fair = Fairness.is_fair a in
  {
    total = counts.total + 1;
    superset_closed = counts.superset_closed + Bool.to_int ssc;
    symmetric = counts.symmetric + Bool.to_int sym;
    fair = counts.fair + Bool.to_int fair;
    fair_only = counts.fair_only + Bool.to_int (fair && (not ssc) && not sym);
    unfair = counts.unfair + Bool.to_int (not fair);
    by_setcon = bump_setcon counts.by_setcon (Setcon.setcon a);
  }

let adversary_of_bits ~n ~live_sets bits =
  let live = List.filteri (fun i _ -> (bits lsr i) land 1 = 1) live_sets in
  Adversary.make ~n live

let exhaustive ~n =
  let live_sets = Pset.nonempty_subsets (Pset.full n) in
  let m = List.length live_sets in
  let counts = ref empty_counts in
  for bits = 1 to (1 lsl m) - 1 do
    counts := add !counts (adversary_of_bits ~n ~live_sets bits)
  done;
  { !counts with by_setcon = List.sort Stdlib.compare !counts.by_setcon }

let sampled ~n ~seed ~samples =
  let live_sets = Pset.nonempty_subsets (Pset.full n) in
  let m = List.length live_sets in
  let st = Random.State.make [| seed; 0xce5 |] in
  let counts = ref empty_counts in
  let bound = (1 lsl m) - 1 in
  for _ = 1 to samples do
    let bits = 1 + Random.State.int st bound in
    counts := add !counts (adversary_of_bits ~n ~live_sets bits)
  done;
  { !counts with by_setcon = List.sort Stdlib.compare !counts.by_setcon }

let fair_computability_classes ~n =
  let live_sets = Pset.nonempty_subsets (Pset.full n) in
  let m = List.length live_sets in
  let seen = Hashtbl.create 64 in
  for bits = 1 to (1 lsl m) - 1 do
    let a = adversary_of_bits ~n ~live_sets bits in
    if Fairness.is_fair a then begin
      let alpha = Setcon.alpha_fn a in
      let signature =
        List.map alpha (Pset.subsets (Pset.full n))
      in
      Hashtbl.replace seen signature ()
    end
  done;
  Hashtbl.length seen

let pp ppf c =
  Format.fprintf ppf
    "total=%d superset-closed=%d symmetric=%d fair=%d fair-only=%d unfair=%d@ setcon histogram: %a"
    c.total c.superset_closed c.symmetric c.fair c.fair_only c.unfair
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
       (fun ppf (k, n) -> Format.fprintf ppf "%d:%d" k n))
    c.by_setcon
