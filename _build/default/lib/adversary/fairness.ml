open Fact_topology

let violations a =
  let n = Adversary.n a in
  let universe = Pset.full n in
  let alpha = Setcon.alpha_fn a in
  List.concat_map
    (fun p ->
      let ap = alpha p in
      List.filter_map
        (fun q ->
          let got =
            Setcon.setcon_collection ~n
              (Adversary.live_sets (Adversary.restrict2 a ~p ~q))
          in
          let expected = min (Pset.cardinal q) ap in
          if got = expected then None else Some (p, q, got, expected))
        (Pset.subsets p))
    (Pset.subsets universe)

let is_fair a = violations a = []

let unfair_example =
  Adversary.make ~n:4
    [ Pset.of_list [ 0; 1 ]; Pset.of_list [ 2; 3 ]; Pset.of_list [ 0; 1; 2; 3 ] ]
