open Fact_topology

(* Definition 1, memoized on the restriction set P: the recursion only
   ever restricts the collection to live sets included in some P, so
   the state is fully described by P. *)
let setcon_fn live =
  let memo = Hashtbl.create 64 in
  let rec go p =
    match Hashtbl.find_opt memo (Pset.to_mask p) with
    | Some v -> v
    | None ->
      let candidates = List.filter (fun s -> Pset.subset s p) live in
      let v =
        List.fold_left
          (fun acc s ->
            let m =
              Pset.fold (fun a m -> min m (go (Pset.remove a s))) s max_int
            in
            max acc (m + 1))
          0 candidates
      in
      Hashtbl.replace memo (Pset.to_mask p) v;
      v
  in
  go

let setcon_collection ~n live = setcon_fn live (Pset.full n)

let setcon a = setcon_collection ~n:(Adversary.n a) (Adversary.live_sets a)

let alpha_fn a = setcon_fn (Adversary.live_sets a)

let alpha a p = alpha_fn a p

let symmetric_formula a =
  if not (Adversary.is_symmetric a) then
    invalid_arg "Setcon.symmetric_formula: adversary is not symmetric";
  Adversary.live_sets a
  |> List.map Pset.cardinal
  |> List.sort_uniq Stdlib.compare
  |> List.length
