open Fact_topology

module Pset_set = Set.Make (struct
  type t = Pset.t

  let compare = Pset.compare
end)

type t = { n : int; live : Pset_set.t }

let make ~n live_sets =
  let universe = Pset.full n in
  let live =
    List.fold_left
      (fun acc s ->
        if Pset.is_empty s then
          invalid_arg "Adversary.make: empty live set";
        if not (Pset.subset s universe) then
          invalid_arg "Adversary.make: live set outside the universe";
        Pset_set.add s acc)
      Pset_set.empty live_sets
  in
  { n; live }

let n t = t.n
let live_sets t = Pset_set.elements t.live
let is_live s t = Pset_set.mem s t.live
let cardinal t = Pset_set.cardinal t.live
let is_empty t = Pset_set.is_empty t.live
let equal a b = a.n = b.n && Pset_set.equal a.live b.live

let restrict t p =
  { t with live = Pset_set.filter (fun s -> Pset.subset s p) t.live }

let restrict2 t ~p ~q =
  { t with
    live =
      Pset_set.filter
        (fun s -> Pset.subset s p && not (Pset.disjoint s q))
        t.live;
  }

let is_superset_closed t =
  let universe = Pset.full t.n in
  Pset_set.for_all
    (fun s ->
      Pset.for_all
        (fun extra -> Pset.mem extra s || Pset_set.mem (Pset.add extra s) t.live)
        universe)
    t.live

let is_symmetric t =
  let sizes =
    Pset_set.fold (fun s acc -> Pset.cardinal s :: acc) t.live []
    |> List.sort_uniq Stdlib.compare
  in
  List.for_all
    (fun k ->
      List.for_all
        (fun s -> Pset_set.mem s t.live)
        (Pset.subsets_of_card k (Pset.full t.n)))
    sizes

let superset_closure t =
  let universe = Pset.full t.n in
  let live =
    List.fold_left
      (fun acc s ->
        if Pset_set.exists (fun l -> Pset.subset l s) t.live then
          Pset_set.add s acc
        else acc)
      Pset_set.empty
      (Pset.nonempty_subsets universe)
  in
  { t with live }

let of_sizes ~n sizes =
  let universe = Pset.full n in
  let live =
    List.concat_map (fun k -> Pset.subsets_of_card k universe) sizes
  in
  make ~n live

let wait_free n = of_sizes ~n (List.init n (fun i -> i + 1))

let t_resilient ~n ~t =
  if t < 0 || t >= n then invalid_arg "Adversary.t_resilient: need 0 <= t < n";
  of_sizes ~n (List.init (t + 1) (fun i -> n - t + i))

let k_obstruction_free ~n ~k =
  if k < 1 || k > n then
    invalid_arg "Adversary.k_obstruction_free: need 1 <= k <= n";
  of_sizes ~n (List.init k (fun i -> i + 1))

let fig5b =
  let base = make ~n:3 [ Pset.singleton 1; Pset.of_list [ 0; 2 ] ] in
  superset_closure base

let pp ppf t =
  Format.fprintf ppf "{n=%d; live=[%a]}" t.n
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
       Pset.pp)
    (live_sets t)
