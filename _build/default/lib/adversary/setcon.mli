(** Agreement power of adversaries (Definition 1, after [13]).

    [setcon A] is the smallest [k] such that k-set consensus is
    solvable in the adversarial A-model:

    {v
      setcon ∅ = 0
      setcon A = max_{S ∈ A} ( min_{a ∈ S} setcon (A|S\{a}) + 1 )
    v} *)

open Fact_topology

val setcon : Adversary.t -> int
(** Exact agreement power, memoized internally over restrictions. *)

val setcon_collection : n:int -> Pset.t list -> int
(** Agreement power of an arbitrary explicit live-set collection (used
    for [A|P,Q] in the fairness check). *)

val alpha : Adversary.t -> Pset.t -> int
(** The agreement function of the adversary:
    [alpha A P = setcon (A|P)] (Section 3). *)

val alpha_fn : Adversary.t -> Pset.t -> int
(** Like {!alpha} but partially applied: [let a = alpha_fn adv] returns
    a closure sharing one memo table across calls — use this when α is
    queried many times (e.g. when building [R_A]). *)

val setcon_fn : Pset.t list -> Pset.t -> int
(** [setcon_fn live P = setcon (C|P)] for the explicit collection
    [C = live], with a shared memo table across calls. *)

val symmetric_formula : Adversary.t -> int
(** For symmetric adversaries: [|{k : ∃S ∈ A, |S| = k}|]. Raises
    [Invalid_argument] on non-symmetric input. Used to cross-check
    {!setcon}. *)
