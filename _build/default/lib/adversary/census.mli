(** Census of adversary classes — quantifying Figure 2.

    Figure 2 shows qualitative inclusions: t-resilient ⊆
    superset-closed ⊆ fair and k-obstruction-free ⊆ symmetric ⊆ fair.
    This module measures how big these classes actually are, by
    classifying {e every} adversary over a small universe (every
    nonempty collection of nonempty live sets), or a random sample for
    larger universes. *)

type counts = {
  total : int;
  superset_closed : int;
  symmetric : int;
  fair : int;
  fair_only : int;
      (** fair but neither superset-closed nor symmetric — the region
          of Figure 2 that earlier characterizations missed *)
  unfair : int;
  by_setcon : (int * int) list;  (** (agreement power, #adversaries) *)
}

val exhaustive : n:int -> counts
(** All [2^(2^n − 1) − 1] nonempty adversaries over [n] processes.
    Practical for n ≤ 3 (127 adversaries); n = 4 has 32767 and takes a
    while but remains feasible. *)

val sampled : n:int -> seed:int -> samples:int -> counts
(** Uniform random sample of nonempty adversaries. *)

val fair_computability_classes : n:int -> int
(** Number of distinct agreement functions among the fair adversaries
    over [n] processes. By [24] (Theorems 1–2) two fair adversaries
    with the same agreement function solve the same tasks, so this
    counts the task-computability classes of the fair world —
    equivalently, the distinct affine tasks [R_A] up to α. *)

val pp : Format.formatter -> counts -> unit
