(** Adversaries: sets of live sets (Delporte et al. [9]).

    An adversary [A] over [n] processes is a collection of nonempty
    process subsets, its {e live sets}. An infinite run is A-compliant
    if the set of correct processes of the run is a live set. *)

open Fact_topology

type t
(** Immutable adversary over a fixed universe [0..n-1]. *)

val make : n:int -> Pset.t list -> t
(** Builds an adversary from its live sets. Empty live sets and live
    sets outside the universe are rejected with [Invalid_argument].
    Duplicates are merged. *)

val n : t -> int
val live_sets : t -> Pset.t list
(** Live sets in increasing bitmask order. *)

val is_live : Pset.t -> t -> bool
val cardinal : t -> int
val is_empty : t -> bool
val equal : t -> t -> bool

(** {1 Restrictions} *)

val restrict : t -> Pset.t -> t
(** [A|P]: live sets of [A] included in [P] (Section 3). *)

val restrict2 : t -> p:Pset.t -> q:Pset.t -> t
(** [A|P,Q = {S ∈ A : S ⊆ P ∧ S ∩ Q ≠ ∅}] (Definition of fairness). *)

(** {1 Structural classes (Figure 2)} *)

val is_superset_closed : t -> bool
(** Every superset (within the universe) of a live set is live. *)

val is_symmetric : t -> bool
(** Membership depends only on the live set's size. *)

val superset_closure : t -> t
(** Smallest superset-closed adversary containing [A]. *)

(** {1 Constructors for standard adversaries} *)

val wait_free : int -> t
(** All nonempty subsets: the wait-free adversary. *)

val t_resilient : n:int -> t:int -> t
(** Live sets of size ≥ n − t. *)

val k_obstruction_free : n:int -> k:int -> t
(** Live sets of size ≤ k (and ≥ 1): the k-obstruction-free /
    k-concurrency adversary. *)

val of_sizes : n:int -> int list -> t
(** Symmetric adversary whose live sets are exactly the subsets whose
    size appears in the list. *)

val fig5b : t
(** The running example of Figures 5b/6b/7b: live sets [{p1}] and
    [{p0, p2}] plus all their supersets, for n = 3 (paper numbering
    [{p2}], [{p1,p3}]; we use 0-based ids). *)

val pp : Format.formatter -> t -> unit
