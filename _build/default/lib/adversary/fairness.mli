(** Fair adversaries (Definition 2, after [24]).

    An adversary [A] is fair iff for all [Q ⊆ P ⊆ Π]:
    [setcon (A|P,Q) = min (|Q|, setcon (A|P))] — a subset of the
    participants cannot achieve better set consensus than the whole.
    Superset-closed and symmetric adversaries are fair; not all
    adversaries are. *)

open Fact_topology

val is_fair : Adversary.t -> bool
(** Exhaustive check of Definition 2 over all pairs Q ⊆ P. *)

val violations : Adversary.t -> (Pset.t * Pset.t * int * int) list
(** All [(P, Q, setcon (A|P,Q), min (|Q|, setcon (A|P)))] with the two
    values different. Empty iff the adversary is fair. *)

val unfair_example : Adversary.t
(** A concrete non-fair adversary (used in tests and the adversary
    zoo): live sets [{p0,p1}], [{p2,p3}] and [{p0,p1,p2,p3}] over
    n = 4. Its agreement power is 2, yet the coalition Q = [{p0,p1}]
    inside full participation has [setcon (A|Π,Q) = 1 <
    min(|Q|, setcon A)] — Definition 2 is violated. *)
