lib/adversary/fairness.ml: Adversary Fact_topology List Pset Setcon
