lib/adversary/agreement.mli: Adversary Fact_topology Format Pset
