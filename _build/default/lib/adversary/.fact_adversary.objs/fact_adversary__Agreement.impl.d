lib/adversary/agreement.ml: Adversary Array Fact_topology Format List Pset Setcon
