lib/adversary/adversary.mli: Fact_topology Format Pset
