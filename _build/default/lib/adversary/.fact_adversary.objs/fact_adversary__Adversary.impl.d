lib/adversary/adversary.ml: Fact_topology Format List Pset Set Stdlib
