lib/adversary/setcon.ml: Adversary Fact_topology Hashtbl List Pset Stdlib
