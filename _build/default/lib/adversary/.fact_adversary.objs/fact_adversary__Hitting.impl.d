lib/adversary/hitting.ml: Fact_topology List Pset
