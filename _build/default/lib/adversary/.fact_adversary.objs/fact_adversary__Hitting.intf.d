lib/adversary/hitting.mli: Fact_topology Pset
