lib/adversary/fairness.mli: Adversary Fact_topology Pset
