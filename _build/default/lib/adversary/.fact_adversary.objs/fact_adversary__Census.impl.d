lib/adversary/census.ml: Adversary Bool Fact_topology Fairness Format Hashtbl List Option Pset Random Setcon Stdlib
