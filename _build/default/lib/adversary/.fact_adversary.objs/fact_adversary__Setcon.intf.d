lib/adversary/setcon.mli: Adversary Fact_topology Pset
