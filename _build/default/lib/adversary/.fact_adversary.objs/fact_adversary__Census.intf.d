lib/adversary/census.mli: Format
