(** The constructive direction of FACT for set consensus.

    For a fair adversary with agreement function α and any
    [k ≥ setcon(A)], one iteration of [R_A] solves k-set consensus:
    each process decides the input value of its leader [µ_Π(v)]
    (Section 6). Property 9 makes the leader's input visible, and
    Property 10 bounds the distinct decisions by [α(Π) = setcon(A) ≤ k].

    This module builds that simplicial map explicitly on a protocol
    complex [R_A(I)]; {!Solver.check_map} certifies it — giving a
    machine-checked witness of the possibility half of Theorem 16 on
    the set-consensus family. *)

open Fact_topology
open Fact_adversary

val set_consensus_map :
  alpha:Agreement.t -> protocol:Complex.t -> Solver.assignment
(** [φ(v) = (χ(v), input of µ_Π(v))] for every vertex of the protocol
    complex (which must be an [R_A] pattern applied to an input
    complex, i.e. level-2 vertices). *)

val decided_value : Vertex.t -> leader:int -> int
(** The input value of [leader] as recorded in the vertex's view.
    Raises [Not_found] if the leader is outside the vertex's
    carrier — Property 9 guarantees this never happens for µ-leaders. *)
