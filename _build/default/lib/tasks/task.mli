(** Distributed tasks [(I, O, ∆)] (Section 2).

    Inputs and outputs are chromatic complexes whose vertices are
    [Vertex.Input {proc; value}] pairs; [∆] is a carrier map from input
    simplices to sub-complexes of [O]: [ρ ⊆ σ ⟹ ∆(ρ) ⊆ ∆(σ)]. *)

open Fact_topology

type t = {
  name : string;
  inputs : Complex.t;
  outputs : Complex.t;
  delta : Simplex.t -> Complex.t;
}

val make :
  name:string ->
  inputs:Complex.t ->
  outputs:Complex.t ->
  delta:(Simplex.t -> Complex.t) ->
  t

val is_carrier_map : t -> bool
(** Checks monotonicity of ∆ on all pairs of nested input simplices
    (exponential in the input complex; meant for tests). *)

val full_inputs : n:int -> values:int list -> Complex.t
(** The input complex of all assignments of a value to each process:
    one facet per function [Π → values]. *)

val fixed_inputs : int list -> Complex.t
(** A single-facet input complex: process [i] gets the i-th value of
    the list. *)
