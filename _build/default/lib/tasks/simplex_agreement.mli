(** Simplex agreement as a task (Section 2).

    Processes start on the vertices of [s] and must output vertices of
    a sub-complex [L ⊆ Chr^ℓ s] forming a simplex whose carrier is
    inside the participating face — i.e. the task form [(s, L, ∆)] of
    an affine task. *)

open Fact_topology
open Fact_affine

val of_affine : Affine_task.t -> Task.t
(** The task [(s, L, ∆)] with [∆(σ) = L ∩ Chr^ℓ(σ)]. *)

val carrier_respected : Affine_task.t -> Simplex.t -> bool
(** Does an output simplex satisfy carrier inclusion for the standard
    simplex inputs? *)
