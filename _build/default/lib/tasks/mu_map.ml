open Fact_topology
open Fact_affine

let decided_value v ~leader =
  let base = Simplex.base_simplex (Simplex.of_vertex v) in
  match Simplex.find_color leader base with
  | Some w -> Vertex.value w
  | None -> raise Not_found

let set_consensus_map ~alpha ~protocol =
  let q = Pset.full (Complex.n protocol) in
  let seen = Hashtbl.create 256 in
  List.concat_map
    (fun f ->
      List.filter_map
        (fun v ->
          if Hashtbl.mem seen v then None
          else begin
            Hashtbl.add seen v ();
            let leader = Mu.leader alpha ~q v in
            Some (v, Vertex.input (Vertex.proc v) (decided_value v ~leader))
          end)
        (Simplex.vertices f))
    (Complex.facets protocol)
