(** Discrete approximate agreement.

    Processes start with input [0] or [range] and must output integers
    in [0 .. range] that (validity) lie between the minimum and maximum
    of the participants' inputs and (agreement) differ pairwise by at
    most 1.

    The task is wait-free solvable but — unlike set consensus — needs
    an input-dependent {e number of iterations}: one round of [Chr]
    shrinks the reachable interval by a factor 3 (for two processes),
    so the minimal subdivision depth for a simplicial map is
    [⌈log₃ range⌉]. The test suite verifies this staircase with the
    {!Solver}, giving a quantitative illustration of why Theorem 16
    quantifies over the iteration count ℓ. *)

val task : n:int -> range:int -> Task.t
(** Inputs: every assignment of [{0, range}] to the processes.
    Raises [Invalid_argument] if [range < 1]. *)

val minimal_rounds : n:int -> range:int -> max_rounds:int -> int option
(** The smallest ℓ ≤ [max_rounds] such that a map [Chr^ℓ(I) → O]
    exists (wait-free solvability at depth ℓ). *)
