open Fact_topology
open Fact_affine

let values_window ~range =
  (* output facets: all assignments inside a window {m, m+1} *)
  List.init range (fun m -> [ m; m + 1 ])

let outputs_complex ~n ~range =
  let rec assignments procs window =
    match procs with
    | [] -> [ [] ]
    | p :: rest ->
      let tails = assignments rest window in
      List.concat_map
        (fun v -> List.map (fun t -> Vertex.input p v :: t) tails)
        window
  in
  let procs = List.init n Fun.id in
  let facets =
    List.concat_map (fun w -> assignments procs w) (values_window ~range)
    |> List.map Simplex.make
  in
  Complex.of_facets ~n facets

let bounds rho =
  let vals = List.map Vertex.value (Simplex.vertices rho) in
  (List.fold_left min max_int vals, List.fold_left max min_int vals)

let delta ~n ~range rho =
  let lo, hi = bounds rho in
  let procs = Pset.to_list (Simplex.colors rho) in
  let rec assignments procs window =
    match procs with
    | [] -> [ [] ]
    | p :: rest ->
      let tails = assignments rest window in
      List.concat_map
        (fun v -> List.map (fun t -> Vertex.input p v :: t) tails)
        window
  in
  let windows =
    values_window ~range
    |> List.map (List.filter (fun v -> v >= lo && v <= hi))
    |> List.filter (fun w -> w <> [])
  in
  let facets =
    List.concat_map (fun w -> assignments procs w) windows
    |> List.map Simplex.make
  in
  Complex.of_facets ~n facets

let task ~n ~range =
  if range < 1 then invalid_arg "Approximate_agreement.task: range < 1";
  Task.make
    ~name:(Printf.sprintf "approx-agreement(range=%d)" range)
    ~inputs:(Task.full_inputs ~n ~values:[ 0; range ])
    ~outputs:(outputs_complex ~n ~range)
    ~delta:(delta ~n ~range)

let minimal_rounds ~n ~range ~max_rounds =
  let t = task ~n ~range in
  Solver.solvable_by_iteration
    ~task_of_round:(fun ell ->
      Affine_task.apply (Affine_task.full_chr ~n ~ell) t.Task.inputs)
    ~task:t ~max_rounds
