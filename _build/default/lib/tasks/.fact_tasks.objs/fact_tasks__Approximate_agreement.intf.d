lib/tasks/approximate_agreement.mli: Task
