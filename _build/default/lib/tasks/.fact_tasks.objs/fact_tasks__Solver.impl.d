lib/tasks/solver.ml: Array Complex Fact_topology Hashtbl List Option Simplex Task Vertex
