lib/tasks/simplex_agreement.ml: Affine_task Chr Complex Fact_affine Fact_topology Printf Simplex Task
