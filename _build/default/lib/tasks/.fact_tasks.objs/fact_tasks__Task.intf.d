lib/tasks/task.mli: Complex Fact_topology Simplex
