lib/tasks/simplex_agreement.mli: Affine_task Fact_affine Fact_topology Simplex Task
