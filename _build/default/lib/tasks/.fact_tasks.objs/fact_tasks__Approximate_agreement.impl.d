lib/tasks/approximate_agreement.ml: Affine_task Complex Fact_affine Fact_topology Fun List Printf Pset Simplex Solver Task Vertex
