lib/tasks/solver.mli: Complex Fact_topology Task Vertex
