lib/tasks/mu_map.mli: Agreement Complex Fact_adversary Fact_topology Solver Vertex
