lib/tasks/mu_map.ml: Complex Fact_affine Fact_topology Hashtbl List Mu Pset Simplex Vertex
