lib/tasks/task.ml: Complex Fact_topology List Simplex Vertex
