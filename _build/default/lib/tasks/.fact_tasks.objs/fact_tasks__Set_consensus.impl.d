lib/tasks/set_consensus.ml: Complex Fact_topology List Printf Pset Simplex Stdlib Task Vertex
