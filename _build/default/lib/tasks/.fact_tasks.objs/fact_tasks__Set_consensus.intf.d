lib/tasks/set_consensus.mli: Task
