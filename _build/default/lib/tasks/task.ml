open Fact_topology

type t = {
  name : string;
  inputs : Complex.t;
  outputs : Complex.t;
  delta : Simplex.t -> Complex.t;
}

let make ~name ~inputs ~outputs ~delta = { name; inputs; outputs; delta }

let is_carrier_map t =
  let simplices = Complex.all_simplices t.inputs in
  List.for_all
    (fun rho ->
      List.for_all
        (fun sigma ->
          (not (Simplex.subset rho sigma))
          || Complex.subcomplex (t.delta rho) (t.delta sigma))
        simplices)
    simplices

let full_inputs ~n ~values =
  if values = [] then invalid_arg "Task.full_inputs: no values";
  let rec assignments i =
    if i = n then [ [] ]
    else
      let rest = assignments (i + 1) in
      List.concat_map
        (fun v -> List.map (fun a -> Vertex.input i v :: a) rest)
        values
  in
  Complex.of_facets ~n (List.map Simplex.make (assignments 0))

let fixed_inputs values =
  let n = List.length values in
  Complex.of_facets ~n
    [ Simplex.make (List.mapi Vertex.input values) ]
