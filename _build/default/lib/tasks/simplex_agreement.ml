open Fact_topology
open Fact_affine

let of_affine l =
  let n = Affine_task.n l in
  Task.make
    ~name:(Printf.sprintf "simplex-agreement(ell=%d)" (Affine_task.ell l))
    ~inputs:(Chr.standard n)
    ~outputs:(Affine_task.complex l)
    ~delta:(fun rho -> Affine_task.delta l (Simplex.colors rho))

let carrier_respected l sigma =
  Complex.mem sigma (Affine_task.complex l)
