lib/runtime/exec.mli: Fact_topology Pset Schedule
