lib/runtime/simulation.mli: Affine_runner Affine_task Fact_affine
