lib/runtime/algorithm1.ml: Agreement Array Exec Fact_adversary Fact_topology Immediate_snapshot List Memory Pset Schedule Simplex Vertex
