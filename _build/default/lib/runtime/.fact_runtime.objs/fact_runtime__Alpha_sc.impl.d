lib/runtime/alpha_sc.ml: Agreement Exec Fact_adversary Fact_topology List Pset
