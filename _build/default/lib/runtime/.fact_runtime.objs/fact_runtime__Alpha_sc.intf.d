lib/runtime/alpha_sc.mli: Agreement Fact_adversary Fact_topology Pset
