lib/runtime/algorithm1.mli: Agreement Exec Fact_adversary Fact_topology Pset Schedule Simplex Vertex
