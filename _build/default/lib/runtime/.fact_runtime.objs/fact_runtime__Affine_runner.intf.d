lib/runtime/affine_runner.mli: Affine_task Complex Fact_affine Fact_topology Simplex Vertex
