lib/runtime/simulation.ml: Affine_runner Affine_task Array Fact_affine List Option
