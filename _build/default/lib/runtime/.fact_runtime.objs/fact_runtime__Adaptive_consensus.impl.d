lib/runtime/adaptive_consensus.ml: Affine_runner Affine_task Array Fact_affine Fact_topology List Mu Pset Stdlib
