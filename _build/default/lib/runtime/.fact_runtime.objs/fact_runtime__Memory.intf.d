lib/runtime/memory.mli:
