lib/runtime/exec.ml: Array Effect Fact_topology List Pset Schedule
