lib/runtime/iis.ml: Array Fact_topology Immediate_snapshot List Simplex Vertex
