lib/runtime/iis.mli: Fact_topology Simplex Vertex
