lib/runtime/memory.ml: Array Exec
