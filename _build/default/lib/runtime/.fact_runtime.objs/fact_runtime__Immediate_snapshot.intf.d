lib/runtime/immediate_snapshot.mli: Fact_topology Pset
