lib/runtime/affine_runner.ml: Affine_task Array Complex Fact_affine Fact_topology List Pset Random Simplex Vertex
