lib/runtime/schedule.mli: Adversary Agreement Fact_adversary Fact_topology Pset
