lib/runtime/adaptive_consensus.mli: Affine_runner Affine_task Agreement Fact_adversary Fact_affine Fact_topology Pset
