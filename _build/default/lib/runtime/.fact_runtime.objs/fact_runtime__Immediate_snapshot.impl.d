lib/runtime/immediate_snapshot.ml: Array Fact_topology List Memory Pset
