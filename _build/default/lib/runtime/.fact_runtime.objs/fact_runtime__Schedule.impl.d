lib/runtime/schedule.ml: Adversary Agreement Array Fact_adversary Fact_topology List Pset Random
