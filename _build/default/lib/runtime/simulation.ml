
open Fact_affine

type value = int

type ('st, 'out) protocol = {
  init : int -> 'st;
  write_value : 'st -> value;
  on_snapshot : 'st -> (value * int) option array -> 'st;
  decide : 'st -> 'out option;
}

type 'out outcome = {
  decisions : (int * 'out) list;
  rounds_used : int;
  snapshots : (int * (value * int) option array) list;
}

(* Published per-process state: a copy of the simulated memory, the
   sequence number of the writer's pending (or last) write, and the
   terminated flag (the ⊥ of §6.1). *)
type 'st cell = {
  memory : (value * int) option array;
  pending_seq : int;            (* seq of the write being performed *)
  terminated : bool;
  state : 'st;                  (* protocol-local, not read by others *)
}

let merge n mine theirs =
  Array.init n (fun j ->
      match (mine.(j), theirs.(j)) with
      | None, c | c, None -> c
      | Some (_, s1), (Some (_, s2) as c2) when s2 > s1 -> c2
      | c1, _ -> c1)

let run ?(respect_termination = true) ~task ~picker ~max_rounds protocol =
  let n = Affine_task.n task in
  let decisions = Array.make n None in
  let snapshots = ref [] in
  let rounds_used = ref 0 in
  let init pid =
    let state = protocol.init pid in
    let memory = Array.make n None in
    (* the first write (sequence number 1) is the initial value *)
    memory.(pid) <- Some (protocol.write_value state, 1);
    { memory; pending_seq = 1; terminated = false; state }
  in
  let step pid v visible =
    ignore v;
    let self = List.assoc pid visible in
    if self.terminated then self
    else begin
      (* 1. merge all visible memory copies *)
      let memory =
        List.fold_left
          (fun acc (_, c) -> merge n acc c.memory)
          (Array.copy self.memory) visible
      in
      (* 2. the pending write is complete when every visible
            non-terminated process has incorporated it *)
      let complete =
        List.for_all
          (fun (j, c) ->
            j = pid
            || (respect_termination && c.terminated)
            || match c.memory.(pid) with
               | Some (_, s) -> s >= self.pending_seq
               | None -> false)
          visible
      in
      if not complete then { self with memory }
      else begin
        (* deliver the snapshot, let the protocol react, maybe decide,
           and issue the next write *)
        snapshots := (pid, Array.copy memory) :: !snapshots;
        let state = protocol.on_snapshot self.state memory in
        match protocol.decide state with
        | Some out ->
          decisions.(pid) <- Some out;
          { self with memory; state; terminated = true }
        | None ->
          let seq = self.pending_seq + 1 in
          memory.(pid) <- Some (protocol.write_value state, seq);
          { memory; pending_seq = seq; terminated = false; state }
      end
    end
  in
  let states = ref (Array.init n init) in
  (try
     for round = 1 to max_rounds do
       rounds_used := round;
       let arr = !states in
       states :=
         Affine_runner.run task ~rounds:1 ~picker:(fun ~round:_ c ->
             picker ~round c)
           ~init:(fun pid -> arr.(pid))
           ~step;
       if Array.for_all (fun c -> c.terminated) !states then raise Exit
     done
   with Exit -> ());
  {
    decisions =
      Array.to_list decisions
      |> List.mapi (fun pid d -> (pid, d))
      |> List.filter_map (function pid, Some d -> Some (pid, d) | _ -> None);
    rounds_used = !rounds_used;
    snapshots = List.rev !snapshots;
  }

let seq_of = function Some (_, s) -> s | None -> 0

let leq a b =
  Array.for_all2 (fun x y -> seq_of x <= seq_of y) a b

let snapshots_contained outcome =
  List.for_all
    (fun (_, s1) ->
      List.for_all
        (fun (_, s2) -> leq s1 s2 || leq s2 s1)
        outcome.snapshots)
    outcome.snapshots

let collect_inputs_protocol ~threshold ~inputs =
  {
    init = (fun pid -> (pid, [ inputs pid ]));
    (* a process only ever (re-)writes its own input *)
    write_value = (fun (pid, _) -> inputs pid);
    on_snapshot =
      (fun (pid, _) memory ->
        let vals =
          Array.to_list memory
          |> List.filter_map (Option.map fst)
        in
        (pid, vals));
    decide =
      (fun (_, vals) ->
        if List.length vals >= threshold then Some vals else None);
  }
