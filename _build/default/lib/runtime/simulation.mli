(** Simulating atomic-snapshot shared memory in the affine model [R_A*]
    (Section 6.1, after Gafni–Rajsbaum [16]).

    Each iteration of the affine task delivers to every process the
    end-of-previous-iteration states of the processes in its view.
    States carry a copy of the simulated single-writer memory (one
    (value, sequence-number) cell per process); merging visible copies
    pointwise by highest sequence number simulates reads, and a write
    completes once every {e non-terminated} visible process is known to
    have incorporated it.

    The fast/slow mechanism of §6.1 is what makes this live: a "fast"
    process (small views) never observes slower ones and would block
    their writes forever — so a process that has decided marks itself
    terminated (the paper's ⊥ input), after which slow processes no
    longer wait for it.

    The test suite verifies the simulated memory is atomic-snapshot
    consistent: completed snapshot vectors are totally ordered by
    pointwise sequence numbers (containment), include the writer's own
    latest completed write (self-inclusion), and grow monotonically per
    process. *)

open Fact_affine

type value = int

(** A full-information protocol against the simulated memory: what to
    write, how to react to a completed snapshot, when to decide. *)
type ('st, 'out) protocol = {
  init : int -> 'st;
  write_value : 'st -> value;
  (** The pending write (re-issued while incomplete). *)

  on_snapshot : 'st -> (value * int) option array -> 'st;
  (** Called each time a write completes, with the merged memory
      ((value, seqno) per cell) — the simulated snapshot. *)

  decide : 'st -> 'out option;
  (** [Some] terminates the process's simulation (it then publishes ⊥
      and only forwards information). *)
}

type 'out outcome = {
  decisions : (int * 'out) list;        (** by increasing process id *)
  rounds_used : int;
  snapshots : (int * (value * int) option array) list;
      (** every completed snapshot, in completion order — for
          consistency checking *)
}

val run :
  ?respect_termination:bool ->
  task:Affine_task.t ->
  picker:Affine_runner.picker ->
  max_rounds:int ->
  ('st, 'out) protocol ->
  'out outcome
(** Runs the protocol for every process in [R_A*] until all decide or
    [max_rounds] iterations elapse.

    [respect_termination] (default [true]) is the §6.1 ⊥ mechanism: a
    write completes without waiting for terminated processes. Setting
    it to [false] is an ablation — slow processes then wait for fast
    processes that will never look at them again, and liveness breaks
    (verified by the test suite). *)

val snapshots_contained : 'out outcome -> bool
(** Containment of completed snapshot vectors under pointwise seqno
    comparison — the atomic-snapshot consistency condition. *)

val collect_inputs_protocol :
  threshold:int -> inputs:(int -> value) -> (int * value list, value list) protocol
(** The input-collection task: write your input, decide once the merged
    memory holds at least [threshold] inputs. Solvable in the
    t-resilient model for [threshold ≤ n − t]; running it in
    [R_{A(t-res)}*] exercises the fast/slow mechanism end-to-end. *)
