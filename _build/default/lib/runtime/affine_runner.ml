open Fact_topology
open Fact_affine

type picker = round:int -> Complex.t -> Simplex.t

let random_picker ~seed =
  let st = Random.State.make [| seed; 0xaff |] in
  fun ~round:_ complex ->
    let fs = Complex.facets complex in
    List.nth fs (Random.State.int st (List.length fs))

let fixed_picker facets =
  if facets = [] then invalid_arg "Affine_runner.fixed_picker: no facets";
  let arr = Array.of_list facets in
  fun ~round _ -> arr.(round mod Array.length arr)

let run l ~rounds ~picker ~init ~step =
  let n = Affine_task.n l in
  let states = Array.init n init in
  let complex = Affine_task.complex l in
  for round = 0 to rounds - 1 do
    let facet = picker ~round complex in
    let snapshot = Array.copy states in
    for pid = 0 to n - 1 do
      match Simplex.find_color pid facet with
      | Some v ->
        let visible =
          Pset.fold
            (fun j acc -> (j, snapshot.(j)) :: acc)
            (Vertex.base_carrier v) []
          |> List.rev
        in
        states.(pid) <- step pid v visible
      | None -> ()
    done
  done;
  states

let trace l ~rounds ~picker =
  let complex = Affine_task.complex l in
  List.init rounds (fun round -> picker ~round complex)
