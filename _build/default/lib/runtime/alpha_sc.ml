open Fact_topology
open Fact_adversary

type t = {
  alpha : Agreement.t;
  mutable participation : Pset.t;
  mutable returned : int list; (* distinct returned values, reversed *)
}

let create alpha = { alpha; participation = Pset.empty; returned = [] }

let participation t = t.participation
let returned_values t = List.rev t.returned

let propose t ~pid ~value =
  (* registering participation is one atomic step *)
  Exec.yield ();
  t.participation <- Pset.add pid t.participation;
  let rec attempt () =
    Exec.yield ();
    let budget = Agreement.eval t.alpha t.participation in
    let distinct = List.length t.returned in
    if List.mem value t.returned then value
    else if distinct < budget then begin
      (* adversarial choice: open a new decision value when allowed *)
      t.returned <- value :: t.returned;
      value
    end
    else if distinct >= 1 && budget >= 1 then
      (* must adopt an already-returned value: the oldest one *)
      List.nth t.returned (distinct - 1)
    else
      (* α(P) = 0: the α-model has no such run yet; wait for more
         participation *)
      attempt ()
  in
  attempt ()
