(** The iterated immediate snapshot (IIS) runtime (Section 2).

    Processes proceed through a sequence of independent one-shot IS
    memories, running the full-information protocol: the value written
    in round [r] is the view obtained in round [r − 1]. The final view
    of a process is (isomorphic to) a vertex of [Chr^m s]; the views of
    all processes form a simplex of [Chr^m s] — verified by the test
    suite under random schedules. *)

open Fact_topology

type view =
  | Base of { pid : int; input : int }
  | Snap of { pid : int; seen : view list }
      (** [seen]: the round-(r−1) views collected in round r. *)

type t

val create : n:int -> rounds:int -> t
val n : t -> int
val rounds : t -> int

val process : t -> pid:int -> input:int -> view
(** The full-information protocol for one process (to be run under
    {!Exec.run}); returns its final view. *)

val to_vertex : view -> Vertex.t
(** The vertex of [Chr^m s] (or of [Chr^m] of an input complex if
    inputs are non-zero) corresponding to a view. *)

val simplex_of_views : view list -> Simplex.t
(** The simplex formed by the given (distinct-process) views. *)
