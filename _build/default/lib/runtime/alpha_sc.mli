(** α-adaptive set consensus objects (Section 3, Definition 4,
    after [24]).

    The abstraction has a single [propose(v)] operation ensuring:
    termination (every correct invoker returns — in the α-model),
    validity (returned values were proposed), and α-agreement: at any
    point, the number of distinct returned values is at most [α(P)]
    where [P] is the current participating set.

    The paper imports from [24] that the A-model, the α-model and the
    α-set-consensus model (read-write memory + these objects) solve the
    same tasks. This module provides the object as a linearizable
    oracle for the {!Exec} runtime, closing that loop operationally:
    protocols written against Definition 4 run under our schedules.

    The oracle is {e adversarial}: it returns the proposer's own value
    whenever α-agreement permits (maximizing disagreement), so bounds
    verified against it are tight. An invocation blocks (spins) while
    [α(P) = 0] or while returning would exceed the budget and no value
    has been returned yet — situations the α-model excludes. *)

open Fact_topology
open Fact_adversary

type t

val create : Agreement.t -> t

val propose : t -> pid:int -> value:int -> int
(** To be run inside {!Exec.run} fibers (performs yields). One-shot
    per process. *)

val participation : t -> Pset.t
(** Processes that have invoked [propose] so far. *)

val returned_values : t -> int list
(** Distinct values returned so far, in first-return order. *)
