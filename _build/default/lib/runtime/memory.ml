type 'a t = { cells : 'a option array }

let create n = { cells = Array.make n None }
let n t = Array.length t.cells

let update t ~pid v =
  Exec.yield ();
  t.cells.(pid) <- Some v

let snapshot t =
  Exec.yield ();
  Array.copy t.cells

let get t i =
  Exec.yield ();
  t.cells.(i)

let peek t i = t.cells.(i)
