(** Executor for the affine model [L*] (Section 2).

    A run of [L*] is an infinite IIS run whose every ℓm-round prefix
    lands in [L^m]; operationally, each iteration picks a facet of [L]
    and every process receives the vertex of its color. A process sees,
    through its vertex, the end-of-previous-iteration states of exactly
    the processes in its base carrier (full information). There are no
    failures in the affine model: every process moves through every
    iteration. *)

open Fact_topology
open Fact_affine

type picker = round:int -> Complex.t -> Simplex.t
(** Chooses the facet realized at each iteration. *)

val random_picker : seed:int -> picker
val fixed_picker : Simplex.t list -> picker
(** Cycles through the given facets. *)

val run :
  Affine_task.t ->
  rounds:int ->
  picker:picker ->
  init:(int -> 'state) ->
  step:(int -> Vertex.t -> (int * 'state) list -> 'state) ->
  'state array
(** [run l ~rounds ~picker ~init ~step]: iterates the task [rounds]
    times. At each iteration, [step pid v visible] receives the
    process's vertex [v] in [L] and the states [visible] of the
    processes in [χ(carrier(v, s))] (sorted by id, including its own)
    as of the start of the iteration. Returns the final states. *)

val trace :
  Affine_task.t ->
  rounds:int ->
  picker:picker ->
  Simplex.t list
(** The facets realized by a run (for inspection and membership
    checks: their composition must land in [L^m]). *)
