open Fact_topology

type view =
  | Base of { pid : int; input : int }
  | Snap of { pid : int; seen : view list }

type t = { n : int; memories : view Immediate_snapshot.t array }

let create ~n ~rounds =
  if rounds < 1 then invalid_arg "Iis.create: rounds must be >= 1";
  { n; memories = Array.init rounds (fun _ -> Immediate_snapshot.create n) }

let n t = t.n
let rounds t = Array.length t.memories

let process t ~pid ~input =
  let rec go r view =
    if r = Array.length t.memories then view
    else
      let pairs =
        Immediate_snapshot.write_snapshot t.memories.(r) ~pid view
      in
      go (r + 1) (Snap { pid; seen = List.map snd pairs })
  in
  go 0 (Base { pid; input })

let rec to_vertex = function
  | Base { pid; input } -> Vertex.input pid input
  | Snap { pid; seen } ->
    let carrier =
      List.sort Vertex.compare (List.map to_vertex seen)
    in
    Vertex.Deriv { proc = pid; carrier }

let simplex_of_views views = Simplex.make (List.map to_vertex views)
