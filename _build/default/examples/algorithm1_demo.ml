(* Algorithm 1 under the microscope.

   Executes the paper's Algorithm 1 (solving R_A in the α-model) under
   several schedules — sequential, round-robin, and random α-model
   schedules with crashes — printing each process's two immediate
   snapshot views and checking the output simplex against R_A.

   Run with: dune exec examples/algorithm1_demo.exe *)

open Fact_core.Fact

let pf = Format.printf

let describe_run alpha ra ~name ~schedule =
  let report = Algorithm1.run alpha ~schedule in
  pf "@.%s:@." name;
  Array.iteri
    (fun pid outcome ->
      match outcome with
      | Exec.Decided o ->
        pf "  p%d decided: View1=%a View2={%a}@." pid Pset.pp
          o.Algorithm1.view1
          (Format.pp_print_list
             ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
             (fun ppf (j, v1) -> Format.fprintf ppf "p%d:%a" j Pset.pp v1))
          o.Algorithm1.view2
      | Exec.Crashed k -> pf "  p%d crashed after %d steps@." pid k
      | Exec.Running -> pf "  p%d still running (budget hit)@." pid)
    report.Exec.outcomes;
  let outputs = List.map snd (Exec.decided report) in
  if outputs <> [] then begin
    let sigma = Algorithm1.simplex_of_outputs outputs in
    pf "  output simplex in R_A: %b (steps: %d)@."
      (Complex.mem sigma ra) report.Exec.steps
  end

let () =
  let n = 3 in
  let adv = Adversary.t_resilient ~n ~t:1 in
  let alpha = Agreement.of_adversary adv in
  let ra = Complex.restrict_colors (Pset.full n)
      (Affine_task.complex (affine_task_of_adversary adv)) in
  pf "Adversary: 1-resilient, n=3. R_A has %d facets (= R_1-res, Fig 1b).@."
    (Complex.facet_count ra);
  describe_run alpha ra ~name:"sequential schedule"
    ~schedule:(Schedule.sequential ~n ~participants:(Pset.full n));
  describe_run alpha ra ~name:"round-robin schedule"
    ~schedule:(Schedule.round_robin ~n ~participants:(Pset.full n));
  List.iter
    (fun seed ->
      describe_run alpha ra
        ~name:(Printf.sprintf "random alpha-model schedule (seed %d)" seed)
        ~schedule:(Schedule.alpha_model ~seed alpha ~participation:(Pset.full n)))
    [ 1; 2; 3 ];
  (* A-compliant run: correct set is the live set {p0,p1}; p2 crashes. *)
  describe_run alpha ra ~name:"A-compliant schedule (live set {p0,p1})"
    ~schedule:(Schedule.adversarial ~seed:9 adv ~live:(Pset.of_list [ 0; 1 ]))
