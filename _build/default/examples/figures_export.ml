(* Export the paper's 2-dimensional figures as plottable data.

   Writes TSV files under ./figures/ with the geometric realization
   (Appendix A coordinates, projected to the plane) of:

     fig1a  Chr s                      (standard chromatic subdivision)
     fig4c  the 2-contention complex   (edges + triangles of Cont2)
     fig7a  R_A for 1-obstruction-freedom
     fig7b  R_A for the fig5b adversary

   Each file has one line per facet: the facet's vertices as
   "x,y" pairs (corner p0 at (0,0), p1 at (1,0), p2 at (0.5, sqrt3/2)).
   Any plotting tool can re-draw the paper's figures from these files.

   Run with: dune exec examples/figures_export.exe *)

open Fact_core.Fact

let corners = [| (0.0, 0.0); (1.0, 0.0); (0.5, sqrt 3.0 /. 2.0) |]

let planar v =
  let c = Geometry.coords ~n:3 v in
  let x = ref 0.0 and y = ref 0.0 in
  Array.iteri
    (fun i w ->
      let cx, cy = corners.(i) in
      x := !x +. (w *. cx);
      y := !y +. (w *. cy))
    c;
  (!x, !y)

let export name facets =
  let dir = "figures" in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path = Filename.concat dir (name ^ ".tsv") in
  let oc = open_out path in
  List.iter
    (fun f ->
      let cells =
        List.map
          (fun v ->
            let x, y = planar v in
            Printf.sprintf "%.6f,%.6f" x y)
          (Simplex.vertices f)
      in
      output_string oc (String.concat "\t" cells);
      output_char oc '\n')
    facets;
  close_out oc;
  Format.printf "wrote %s (%d facets)@." path (List.length facets)

let () =
  let chr1 = Chr.subdivide (Chr.standard 3) in
  let chr2 = Chr.subdivide chr1 in
  export "fig1a_chr" (Complex.facets chr1);
  let cont = Contention.complex chr2 in
  export "fig4c_cont2"
    (List.filter (fun s -> Simplex.dim s >= 1) (Complex.all_simplices cont));
  export "fig7a_ra_1of"
    (Complex.facets (Ra.complex (Agreement.k_obstruction_free ~n:3 ~k:1) ~n:3));
  export "fig7b_ra_fig5b"
    (Complex.facets (Ra.complex (Agreement.of_adversary Adversary.fig5b) ~n:3));
  export "fig1b_rtres" (Complex.facets (Rtres.complex ~n:3 ~t:1))
