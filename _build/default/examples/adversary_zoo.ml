(* The adversary zoo: one specimen per region of Figure 2.

   For each adversary we print its structural class (superset-closed /
   symmetric), whether it is fair, its agreement power (Definition 1),
   the minimal hitting-set size, and the size of its affine task R_A.

   Run with: dune exec examples/adversary_zoo.exe *)

open Fact_core.Fact

let pf = Format.printf
let ps = Pset.of_list

let zoo =
  [
    ("wait-free (n=3)", Adversary.wait_free 3);
    ("1-resilient (n=3)", Adversary.t_resilient ~n:3 ~t:1);
    ("consensus/0-resilient (n=3)", Adversary.t_resilient ~n:3 ~t:0);
    ("1-obstruction-free (n=3)", Adversary.k_obstruction_free ~n:3 ~k:1);
    ("2-obstruction-free (n=3)", Adversary.k_obstruction_free ~n:3 ~k:2);
    ("sizes {1,3} (n=3)", Adversary.of_sizes ~n:3 [ 1; 3 ]);
    ("fig5b: {p1},{p0 p2}+supersets", Adversary.fig5b);
    ( "asymmetric superset-closed (n=3)",
      Adversary.superset_closure (Adversary.make ~n:3 [ ps [ 0 ] ]) );
    ( "unfair specimen (n=4)", Fairness.unfair_example );
  ]

let () =
  pf "%-34s %5s %5s %5s %7s %6s %9s@." "adversary" "ssc" "sym" "fair"
    "setcon" "csize" "R_A size";
  List.iter
    (fun (name, adv) ->
      let c = classify adv in
      let csize = Hitting.csize (Adversary.live_sets adv) in
      let ra_size =
        (* R_A is meaningful for fair adversaries; we still build the
           complex of Definition 9 for the unfair specimen, flagged. *)
        Complex.facet_count
          (Affine_task.complex (affine_task_of_adversary adv))
      in
      pf "%-34s %5b %5b %5b %7d %6d %6d%s@." name c.superset_closed
        c.symmetric c.fair c.agreement_power csize ra_size
        (if c.fair then "" else " (!)"))
    zoo;
  pf "@.(!) = the adversary is not fair; Definition 9 still yields a complex,@.";
  pf "but the characterization theorems do not apply to it.@.";
  (* Show a concrete fairness violation for the unfair specimen. *)
  match Fairness.violations Fairness.unfair_example with
  | (p, q, got, expected) :: _ ->
    pf "@.unfair witness: P=%a Q=%a setcon(A|P,Q)=%d but min(|Q|,setcon(A|P))=%d@."
      Pset.pp p Pset.pp q got expected
  | [] -> assert false
