(* Compactness of affine models (Section 1, "Compact models").

   Two demonstrations:

   1. Non-compactness of adversarial models: every finite prefix of the
      infinite solo run of p0 complies with the 1-resilient 3-process
      model (it extends to a run with >= 2 correct processes), yet the
      run itself — with correct set {p0} — is not in the model.

   2. Compactness pays off: any task solvable in the affine model R_A*
      is solvable in a bounded number of iterations (König's lemma);
      the solver exhibits the bound ℓ for k-set consensus.

   Run with: dune exec examples/compactness.exe *)

open Fact_core.Fact

let pf = Format.printf

let () =
  let n = 3 in
  let adv = Adversary.t_resilient ~n ~t:1 in

  (* 1. The solo run and its prefixes. *)
  pf "1-resilient model, n=3. Live sets: %a@." Adversary.pp adv;
  let solo_correct = Pset.of_list [ 0 ] in
  pf "Infinite solo run of p0: correct set %a is live: %b -> run NOT in model@."
    Pset.pp solo_correct
    (Adversary.is_live solo_correct adv);
  List.iter
    (fun k ->
      (* A k-step prefix of the solo run extends to a run where p1 and
         p2 wake up and run forever: correct set {p0,p1,p2} is live. *)
      pf "  %3d-step prefix: extendable with correct set %a (live: %b) -> complies@."
        k Pset.pp (Pset.full n)
        (Adversary.is_live (Pset.full n) adv))
    [ 1; 10; 100; 1000 ];
  pf "Every prefix complies, the limit does not: the model is not compact.@.";

  (* 2. Affine models are compact: solvability is witnessed at a finite
     iteration count. *)
  let ra = affine_task_of_adversary adv in
  pf "@.R_A for 1-resilience: %a@." Affine_task.pp_stats ra;
  let t = Set_consensus.task_fixed ~n ~k:2 ~inputs:[ 0; 1; 2 ] in
  (match
     Solver.solvable_by_iteration
       ~task_of_round:(fun r ->
         Affine_task.apply (Affine_task.iterate ra r) t.Task.inputs)
       ~task:t ~max_rounds:2
   with
  | Some ell ->
    pf "2-set consensus solvable from R_A^%d — a finite certificate.@." ell
  | None -> pf "no map found within the bound (unexpected)@.");
  let c = Set_consensus.task_fixed ~n ~k:1 ~inputs:[ 0; 1; 2 ] in
  (match
     Solver.solve
       ~protocol:(Affine_task.apply ra c.Task.inputs)
       ~task:c
   with
  | Solver.Unsolvable ->
    pf "consensus admits no map from R_A^1 (agreement power is 2).@."
  | Solver.Solvable _ -> pf "unexpected: consensus solved@.")
