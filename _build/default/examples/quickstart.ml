(* Quickstart: from an adversary to its affine task and a verified run.

   Build a fair adversary, inspect its agreement function, construct
   the affine task R_A (Definition 9), and execute Algorithm 1 under a
   random α-model schedule, checking that the outputs land in R_A
   (Theorem 7).

   Run with: dune exec examples/quickstart.exe *)

open Fact_core.Fact

let pf = Format.printf

let () =
  let n = 3 in
  (* The running example of Figures 5b/6b/7b: live sets {p1} and
     {p0,p2}, plus all supersets. *)
  let adv = Adversary.fig5b in
  pf "Adversary: %a@." Adversary.pp adv;

  (* 1. Classify it (Figure 2). *)
  let c = classify adv in
  pf "superset-closed=%b symmetric=%b fair=%b agreement power=%d@."
    c.superset_closed c.symmetric c.fair c.agreement_power;

  (* 2. Its agreement function α(P) = setcon(A|P). *)
  let alpha = Agreement.of_adversary adv in
  List.iter
    (fun p -> pf "  alpha(%a) = %d@." Pset.pp p (Agreement.eval alpha p))
    (Pset.nonempty_subsets (Pset.full n));

  (* 3. The affine task R_A ⊆ Chr² s. *)
  let ra = affine_task_of_adversary adv in
  pf "R_A: %a@." Affine_task.pp_stats ra;

  (* 4. Run Algorithm 1 in the α-model and verify Theorem 7. *)
  let schedule = Schedule.alpha_model ~seed:42 alpha ~participation:(Pset.full n) in
  let report = Algorithm1.run alpha ~schedule in
  let outputs = List.map snd (Exec.decided report) in
  pf "Algorithm 1 decided %d/%d processes in %d steps@."
    (List.length outputs) n report.Exec.steps;
  let sigma = Algorithm1.simplex_of_outputs outputs in
  pf "outputs form a simplex of R_A: %b@."
    (Complex.mem sigma (Affine_task.complex ra));

  (* 5. One iteration of R_A* solves 2-set consensus (= its agreement
     power) via the µ leader map. *)
  let result =
    Adaptive_consensus.solve ~task:ra ~alpha ~q:(Pset.full n)
      ~proposals:(fun pid -> 100 + pid)
      ~picker:(Affine_runner.random_picker ~seed:7)
      ()
  in
  pf "set consensus decisions: %a (%d distinct <= %d)@."
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
       (fun ppf (p, v) -> Format.fprintf ppf "p%d->%d" p v))
    result.Adaptive_consensus.decisions result.Adaptive_consensus.distinct
    c.agreement_power
