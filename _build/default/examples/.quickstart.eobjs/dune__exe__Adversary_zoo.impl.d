examples/adversary_zoo.ml: Adversary Affine_task Complex Fact_core Fairness Format Hitting List Pset
