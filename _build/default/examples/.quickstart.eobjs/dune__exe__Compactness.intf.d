examples/compactness.mli:
