examples/adversary_zoo.mli:
