examples/algorithm1_demo.mli:
