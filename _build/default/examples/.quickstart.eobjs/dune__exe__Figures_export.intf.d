examples/figures_export.mli:
