examples/set_consensus_demo.ml: Adaptive_consensus Adversary Affine_runner Agreement Fact_core Format List Pset
