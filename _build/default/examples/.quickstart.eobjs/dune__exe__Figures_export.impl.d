examples/figures_export.ml: Adversary Agreement Array Chr Complex Contention Fact_core Filename Format Geometry List Printf Ra Rtres Simplex String Sys
