examples/compactness.ml: Adversary Affine_task Fact_core Format List Pset Set_consensus Solver Task
