examples/algorithm1_demo.ml: Adversary Affine_task Agreement Algorithm1 Array Complex Exec Fact_core Format List Printf Pset Schedule
