examples/quickstart.ml: Adaptive_consensus Adversary Affine_runner Affine_task Agreement Algorithm1 Complex Exec Fact_core Format List Pset Schedule
