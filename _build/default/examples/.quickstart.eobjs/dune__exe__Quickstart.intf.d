examples/quickstart.mli:
