(* End-to-end set consensus in the affine model R_A*.

   For every adversary in a small zoo and every proposer set Q, run the
   µ-based α-adaptive set consensus protocol (Section 6) over many
   random facet schedules and report the worst number of distinct
   decisions, against the theoretical bound min(|Q|, setcon A).

   Run with: dune exec examples/set_consensus_demo.exe *)

open Fact_core.Fact

let pf = Format.printf

let () =
  let n = 3 in
  let zoo =
    [
      ("wait-free", Adversary.wait_free n);
      ("1-resilient", Adversary.t_resilient ~n ~t:1);
      ("1-obstruction-free", Adversary.k_obstruction_free ~n ~k:1);
      ("2-obstruction-free", Adversary.k_obstruction_free ~n ~k:2);
      ("fig5b", Adversary.fig5b);
    ]
  in
  List.iter
    (fun (name, adv) ->
      let alpha = Agreement.of_adversary adv in
      let task = affine_task_of_adversary adv in
      let power = Agreement.eval alpha (Pset.full n) in
      pf "@.%s (agreement power %d):@." name power;
      List.iter
        (fun q ->
          let bound = min (Pset.cardinal q) power in
          let worst = ref 0 in
          for seed = 1 to 100 do
            let result =
              Adaptive_consensus.solve ~task ~alpha ~q
                ~proposals:(fun pid -> 10 * (pid + 1))
                ~picker:(Affine_runner.random_picker ~seed)
                ()
            in
            worst := max !worst result.Adaptive_consensus.distinct
          done;
          pf "  Q=%-12s worst distinct decisions: %d (bound %d)%s@."
            (Pset.to_string q) !worst bound
            (if !worst <= bound then "" else "  VIOLATION");
          assert (!worst <= bound))
        (Pset.nonempty_subsets (Pset.full n)))
    zoo
