(* fact — command-line interface to the FACT library.

   Subcommands:
     analyze   classify an adversary, print its agreement function
     affine    build the affine task R_A and print statistics
     run       execute Algorithm 1 under a random alpha-model schedule
     solve     decide k-set-consensus solvability from R_A iterations
     chr       print statistics of Chr^m s

   Adversaries are given either by a preset name
   (wait-free | t-res:T | k-of:K | fig5b) or as explicit live sets,
   e.g. --live 0,1 --live 2. *)

open Cmdliner
open Fact_core.Fact

let pf = Format.printf

(* ----------------------------- adversary argument ----------------- *)

let parse_live s =
  try
    Ok
      (Pset.of_list
         (List.map int_of_string
            (String.split_on_char ',' (String.trim s))))
  with Failure _ -> Error (`Msg (Printf.sprintf "bad live set %S" s))

let live_conv = Arg.conv (parse_live, fun ppf p -> Pset.pp ppf p)

let adversary_of ~n ~preset ~live_sets =
  match (preset, live_sets) with
  | Some p, [] ->
    (match String.split_on_char ':' p with
    | [ "wait-free" ] -> Adversary.wait_free n
    | [ "fig5b" ] -> Adversary.fig5b
    | [ "t-res"; t ] -> Adversary.t_resilient ~n ~t:(int_of_string t)
    | [ "k-of"; k ] -> Adversary.k_obstruction_free ~n ~k:(int_of_string k)
    | _ -> failwith (Printf.sprintf "unknown preset %S" p))
  | None, (_ :: _ as ls) -> Adversary.make ~n ls
  | Some _, _ :: _ -> failwith "give either --preset or --live, not both"
  | None, [] -> failwith "give an adversary: --preset or --live"

let n_arg =
  Arg.(value & opt int 3 & info [ "n" ] ~doc:"Number of processes.")

let preset_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "preset" ] ~docv:"NAME"
        ~doc:"Adversary preset: wait-free | t-res:T | k-of:K | fig5b.")

let live_arg =
  Arg.(
    value & opt_all live_conv []
    & info [ "live" ] ~docv:"P,Q,..."
        ~doc:"A live set, as comma-separated process ids (repeatable).")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.")

let with_adversary f n preset live_sets =
  match adversary_of ~n ~preset ~live_sets with
  | adv -> f n adv
  | exception Failure msg | exception Invalid_argument msg ->
    prerr_endline ("fact: " ^ msg);
    exit 2

(* ----------------------------- analyze ---------------------------- *)

let analyze n adv =
  pf "adversary: %a@." Adversary.pp adv;
  let c = classify adv in
  pf "superset-closed: %b@.symmetric: %b@.fair: %b@." c.superset_closed
    c.symmetric c.fair;
  pf "agreement power (setcon): %d@." c.agreement_power;
  pf "minimal hitting set size (csize): %d@."
    (Hitting.csize (Adversary.live_sets adv));
  let alpha = Agreement.of_adversary adv in
  pf "agreement function:@.";
  List.iter
    (fun p -> pf "  alpha(%a) = %d@." Pset.pp p (Agreement.eval alpha p))
    (Pset.nonempty_subsets (Pset.full n));
  if not c.fair then begin
    pf "fairness violations:@.";
    List.iter
      (fun (p, q, got, expected) ->
        pf "  P=%a Q=%a setcon(A|P,Q)=%d expected %d@." Pset.pp p Pset.pp q
          got expected)
      (Fairness.violations adv)
  end

let analyze_cmd =
  Cmd.v (Cmd.info "analyze" ~doc:"Classify an adversary (Figure 2).")
    Term.(const (with_adversary analyze) $ n_arg $ preset_arg $ live_arg)

(* ----------------------------- affine ----------------------------- *)

let affine n adv =
  ignore n;
  let task = affine_task_of_adversary adv in
  pf "R_A: %a@." Affine_task.pp_stats task;
  let c = Affine_task.complex task in
  pf "simplices: %d  euler characteristic: %d@." (Complex.simplex_count c)
    (Complex.euler_characteristic c);
  pf "volume fraction of |Chr^2 s|: %.4f@." (Geometry.total_volume c);
  pf "link-connected: %b@." (Link.is_link_connected c);
  List.iter
    (fun p ->
      let d = Affine_task.delta task p in
      pf "  delta(%a): %d facets@." Pset.pp p (Complex.facet_count d))
    (Pset.nonempty_subsets (Pset.full (Adversary.n adv)))

let affine_cmd =
  Cmd.v
    (Cmd.info "affine" ~doc:"Build the affine task R_A (Definition 9).")
    Term.(const (with_adversary affine) $ n_arg $ preset_arg $ live_arg)

(* ----------------------------- run -------------------------------- *)

let run_alg1 seed n adv =
  let alpha = Agreement.of_adversary adv in
  let participation = Pset.full n in
  if Agreement.eval alpha participation < 1 then begin
    prerr_endline "fact: alpha(full participation) = 0, no alpha-model run";
    exit 2
  end;
  let schedule = Schedule.alpha_model ~seed alpha ~participation in
  pf "faulty processes: %a@." Pset.pp (Schedule.faulty schedule);
  let report = Algorithm1.run alpha ~schedule in
  Array.iteri
    (fun pid outcome ->
      match outcome with
      | Exec.Decided o ->
        pf "p%d: View1=%a View2={%a}@." pid Pset.pp o.Algorithm1.view1
          (Format.pp_print_list
             ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
             (fun ppf (j, v1) -> Format.fprintf ppf "p%d:%a" j Pset.pp v1))
          o.Algorithm1.view2
      | Exec.Crashed k -> pf "p%d: crashed after %d steps@." pid k
      | Exec.Running -> pf "p%d: still running@." pid)
    report.Exec.outcomes;
  match List.map snd (Exec.decided report) with
  | [] -> pf "nobody decided@."
  | outputs ->
    let sigma = Algorithm1.simplex_of_outputs outputs in
    let ra = affine_task_of_adversary adv in
    pf "output simplex lands in R_A: %b (total steps %d)@."
      (Complex.mem sigma (Affine_task.complex ra))
      report.Exec.steps

let run_cmd =
  Cmd.v
    (Cmd.info "run"
       ~doc:"Execute Algorithm 1 under a random alpha-model schedule.")
    Term.(
      const (fun seed n preset live ->
          with_adversary (run_alg1 seed) n preset live)
      $ seed_arg $ n_arg $ preset_arg $ live_arg)

(* ----------------------------- solve ------------------------------ *)

let solve k n adv =
  let power = Setcon.setcon adv in
  pf "agreement power: %d; deciding %d-set consensus...@." power k;
  let t =
    Set_consensus.task_fixed ~n ~k ~inputs:(List.init n (fun i -> i))
  in
  let ra = affine_task_of_adversary adv in
  match
    Solver.solve ~protocol:(Affine_task.apply ra t.Task.inputs) ~task:t
  with
  | Solver.Solvable _ ->
    pf "solvable from one iteration of R_A (map found and certified)@."
  | Solver.Unsolvable ->
    pf "no simplicial map from R_A^1 (consistent with setcon = %d)@." power

let solve_cmd =
  let k_arg =
    Arg.(value & opt int 1 & info [ "k" ] ~doc:"Set-consensus parameter k.")
  in
  Cmd.v
    (Cmd.info "solve"
       ~doc:"Decide k-set-consensus solvability from R_A (Theorem 16).")
    Term.(
      const (fun k n preset live -> with_adversary (solve k) n preset live)
      $ k_arg $ n_arg $ preset_arg $ live_arg)

(* ----------------------------- chr -------------------------------- *)

let chr n m =
  let c = Chr.iterate m (Chr.standard n) in
  pf "Chr^%d s (n=%d): %a@." m n Complex.pp_stats c;
  pf "simplices: %d  euler characteristic: %d@." (Complex.simplex_count c)
    (Complex.euler_characteristic c)

let chr_cmd =
  let m_arg =
    Arg.(value & opt int 1 & info [ "m" ] ~doc:"Subdivision iterations.")
  in
  Cmd.v
    (Cmd.info "chr" ~doc:"Statistics of the iterated chromatic subdivision.")
    Term.(const chr $ n_arg $ m_arg)

(* ----------------------------- census ----------------------------- *)

let census_run n =
  if n > 4 then begin
    prerr_endline "fact: census is exhaustive; n <= 4 only";
    exit 2
  end;
  pf "census over all adversaries, n=%d:@." n;
  pf "%a@." Census.pp (Census.exhaustive ~n);
  pf "fair task-computability classes: %d@."
    (Census.fair_computability_classes ~n)

let census_cmd =
  Cmd.v
    (Cmd.info "census"
       ~doc:"Classify every adversary over n processes (quantified Figure 2).")
    Term.(const census_run $ n_arg)

(* ------------------------------------------------------------------ *)

let () =
  let info =
    Cmd.info "fact" ~version:"1.0.0"
      ~doc:
        "Affine tasks for fair adversaries (Kuznetsov, Rieutord, He, PODC \
         2018) — executable."
  in
  exit
    (Cmd.eval
       (Cmd.group info [ analyze_cmd; affine_cmd; run_cmd; solve_cmd; chr_cmd; census_cmd ]))
