test/test_main.ml: Alcotest Test_adversary Test_affine Test_runtime Test_tasks Test_topology
