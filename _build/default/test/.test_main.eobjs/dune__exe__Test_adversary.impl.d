test/test_adversary.ml: Adversary Agreement Alcotest Census Fact_adversary Fact_topology Fairness Hitting List Printf Pset QCheck QCheck_alcotest Setcon
