test/test_topology.ml: Alcotest Chr Complex Fact_topology Geometry Link List Opart Option Printf Pset QCheck QCheck_alcotest Random Simplex Sperner Vertex
